#!/usr/bin/env python3
"""opera-lint: statically enforce the repo's determinism contract.

`--threads=N` must produce bit-identical output to `--threads=1` (pinned
at runtime by ShardParityTest). That contract survives only if certain
constructs never reach shard-executed code, and runtime parity tests only
cover the configurations they run. This linter rejects the known footguns
at review time, tree-wide:

  rng-shard-path      No net::Rng / std::mt19937 / <random> machinery in
                      shard-reachable layers (src/sim, src/net,
                      src/transport, src/core). Shards interleave
                      nondeterministically, so any shared rng stream's
                      draw order depends on the partition. Legitimate
                      coordinator-phase sites (grant shuffles that only
                      draw at barrier-aligned global events) are
                      enumerated in the allowlist, one entry per site.
                      Generation-/construction-time layers (topo,
                      workload, fluid, exp) run before or between
                      epochs on one thread and are exempt by scope.
  unordered-iteration No iteration over std::unordered_map/set.
                      Iteration order is libstdc++-version- and
                      pointer-dependent; if it feeds FlowTracker merges,
                      Report/CSV output, or event scheduling, output
                      changes silently. Keyed lookup is fine. Sites
                      proven order-insensitive go in the allowlist with
                      a justification.
  pointer-order       No pointer-valued ordering or hashing
                      (std::hash/less/greater over T*,
                      reinterpret_cast<uintptr_t>). Allocation addresses
                      differ run to run; any order derived from them is
                      nondeterministic.
  wall-clock          No wall-clock or libc randomness anywhere in src/:
                      time(), std::chrono::system_clock, rand()/srand(),
                      gettimeofday, clock(). Simulated time is sim::Time;
                      randomness is the seeded sim::Rng.
                      std::chrono::steady_clock is allowed: it feeds
                      only wall-clock *reporting* (the wall_s column),
                      never simulation state.
  raw-packet-alloc    No raw new/delete of net::Packet outside the pool
                      (src/net/packet.cc). Pooled packets keep the hot
                      path allocation-free and give every packet a
                      deterministic lifecycle; a stray `new Packet`
                      bypasses both.
  include-layering    #include edges between src/<layer>/ directories
                      must match the CMake link graph (e.g. core may not
                      include exp). The static libraries enforce this at
                      link time only for symbols; headers leak silently.
  checkpoint-coverage Structs serialized into checkpoints are tagged
                      `// checkpoint:v<N> fields=<M>` (docs/CHECKPOINT.md).
                      The rule counts the struct's data members and fails
                      when the count drifts from fields=<M>: adding a
                      member without updating the marker — and therefore
                      without thinking about the schema version and the
                      reader — is exactly how checkpoints rot into silent
                      misparses.

Usage:
    scripts/opera_lint.py                      # lint src/ under the repo root
    scripts/opera_lint.py --list-rules
    scripts/opera_lint.py file.cc ...          # lint specific files
    scripts/opera_lint.py --strict             # unused allowlist entries fail

Exit status: 0 clean, 1 violations (each reported as
`path:line: [rule] message`), 2 usage/config errors.

The checking logic is pure functions over (relpath, source text,
allowlist) — unit-tested by tests/test_opera_lint.py, same pattern as
check_bench_baseline.py. The allowlist lives in
scripts/opera_lint_allowlist.txt; see that file for the entry format.
"""
import argparse
import pathlib
import re
import sys

# Layers whose code can execute on shard worker threads during the epoch
# loop. topo/workload/fluid/exp run at construction/generation time or on
# the coordinator between epochs, so rng use there cannot depend on the
# shard interleaving.
SHARD_LAYERS = {"sim", "net", "transport", "core"}

# The seeded deterministic generator's own implementation.
RNG_IMPL_FILES = {"src/sim/rng.h", "src/sim/rng.cc"}

# The packet pool — the one place allowed to `new Packet`.
PACKET_POOL_FILES = {"src/net/packet.cc"}

# Allowed #include edges between src/<layer>/ directories. Must mirror the
# target_link_libraries graph in CMakeLists.txt (PUBLIC edges are
# transitive there, so the closure is spelled out here).
LAYER_DEPS = {
    "sim": {"sim"},
    "topo": {"topo", "sim"},
    "net": {"net", "sim"},
    "transport": {"transport", "net", "sim"},
    "core": {"core", "topo", "net", "transport", "sim"},
    # fluid sits above core: the fluid/hybrid engines implement
    # core::Network and register themselves in core::NetworkFactory
    # (PR 9); the closure pulls in core's own deps.
    "fluid": {"fluid", "core", "topo", "net", "transport", "sim"},
    "workload": {"workload", "sim"},
    "exp": {"exp", "core", "fluid", "workload", "topo", "net", "transport", "sim"},
}


class Violation:
    __slots__ = ("rule", "path", "line", "message", "text")

    def __init__(self, rule, path, line, message, text):
        self.rule = rule
        self.path = path
        self.line = line          # 1-based
        self.message = message
        self.text = text          # the offending source line, for allowlist matching

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class AllowEntry:
    __slots__ = ("rule", "path", "pattern", "justification", "lineno", "used")

    def __init__(self, rule, path, pattern, justification, lineno):
        self.rule = rule
        self.path = path
        self.pattern = pattern    # compiled regex, matched against the source line
        self.justification = justification
        self.lineno = lineno
        self.used = False


def parse_allowlist(text, filename="allowlist"):
    """Parses `rule | path | line-regex | justification` entries.

    Returns (entries, errors). Blank lines and '#' comments are skipped.
    Every field is required — an allowlist entry without a justification
    is exactly the kind of rot this tool exists to prevent.
    """
    entries, errors = [], []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4 or not all(parts):
            errors.append(f"{filename}:{lineno}: expected "
                          "'rule | path | line-regex | justification'")
            continue
        rule, path, pattern, justification = parts
        if rule not in RULES:
            errors.append(f"{filename}:{lineno}: unknown rule '{rule}'")
            continue
        try:
            compiled = re.compile(pattern)
        except re.error as e:
            errors.append(f"{filename}:{lineno}: bad regex '{pattern}': {e}")
            continue
        entries.append(AllowEntry(rule, path, compiled, justification, lineno))
    return entries, errors


def strip_comments_and_strings(text):
    """Blanks out //, /* */ comments and string/char literal contents,
    preserving line structure, so rules never fire on prose or data."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            out.append("  ")
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "'" and i > 0 and text[i - 1] in "0123456789abcdefABCDEFxX" \
                and i + 1 < n and text[i + 1] in "0123456789abcdefABCDEF":
            out.append(c)  # C++ digit separator (1'000'000), not a char literal
            i += 1
        elif c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _layer_of(relpath):
    parts = pathlib.PurePosixPath(relpath).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


# --------------------------------------------------------------------------
# Rules. Each takes (relpath, code_lines) where code_lines is the
# comment/string-stripped source split into lines, and yields
# (lineno, message) pairs. Scope filtering happens inside the rule.
# --------------------------------------------------------------------------

_RNG_PATTERNS = [
    (re.compile(r"\bRng\b"), "sim::Rng"),
    (re.compile(r"\brng_\b"), "rng_ member"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\buniform_(?:int|real)_distribution\b"), "std:: distribution"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bd?rand48\b"), "rand48"),
]


def rule_rng_shard_path(relpath, code_lines):
    if _layer_of(relpath) not in SHARD_LAYERS or relpath in RNG_IMPL_FILES:
        return
    for lineno, line in enumerate(code_lines, 1):
        if line.lstrip().startswith("#include"):
            continue
        for pat, what in _RNG_PATTERNS:
            if pat.search(line):
                yield (lineno,
                       f"{what} in shard-reachable layer "
                       f"'{_layer_of(relpath)}': shard interleaving makes any "
                       "shared rng stream's draw order partition-dependent. "
                       "Use order-independent header hashing on the per-packet "
                       "path, or allowlist a coordinator-phase site.")
                break


_UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{()]*>\s*(\w+)\s*[;{=(]")
_RANGE_FOR = re.compile(r"\bfor\s*\(([^;]*?):([^;)]*)\)")


def rule_unordered_iteration(relpath, code_lines):
    if _layer_of(relpath) is None:
        return
    text = "\n".join(code_lines)
    names = set(_UNORDERED_DECL.findall(text))
    if not names:
        return
    name_word = re.compile(r"\b(" + "|".join(map(re.escape, sorted(names))) + r")\b")
    for lineno, line in enumerate(code_lines, 1):
        m = _RANGE_FOR.search(line)
        if m:
            hit = name_word.search(m.group(2))
            if hit:
                yield (lineno,
                       f"range-for over unordered container '{hit.group(1)}': "
                       "iteration order is hash/pointer-dependent and will "
                       "diverge across runs and standard libraries. Iterate a "
                       "sorted key vector, or allowlist with a proof of "
                       "order-insensitivity.")
                continue
        for n in names:
            if re.search(re.escape(n) + r"\s*\.\s*c?begin\s*\(", line):
                yield (lineno,
                       f"iterator walk of unordered container '{n}': "
                       "iteration order is hash/pointer-dependent. Iterate a "
                       "sorted key vector, or allowlist with a proof of "
                       "order-insensitivity.")
                break


_POINTER_ORDER_PATTERNS = [
    (re.compile(r"\b(?:hash|less|greater)\s*<[^<>]*\*\s*>"),
     "ordering/hashing by pointer value"),
    (re.compile(r"reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer-to-integer cast (address-derived value)"),
]


def rule_pointer_order(relpath, code_lines):
    if _layer_of(relpath) is None:
        return
    for lineno, line in enumerate(code_lines, 1):
        for pat, what in _POINTER_ORDER_PATTERNS:
            if pat.search(line):
                yield (lineno,
                       f"{what}: allocation addresses differ run to run, so "
                       "any order or hash derived from them is "
                       "nondeterministic. Key on a stable id instead.")
                break


_WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "high_resolution_clock (alias of system_clock on some platforms)"),
    (re.compile(r"(?<![\w.>])time\s*\("), "time()"),
    (re.compile(r"std::\s*time\b"), "std::time"),
    (re.compile(r"(?<![\w.>:])rand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\b(?:localtime|gmtime)\b"), "calendar time"),
    (re.compile(r"(?<![\w.>:])clock\s*\("), "clock()"),
]


def rule_wall_clock(relpath, code_lines):
    if _layer_of(relpath) is None:
        return
    for lineno, line in enumerate(code_lines, 1):
        for pat, what in _WALL_CLOCK_PATTERNS:
            if pat.search(line):
                yield (lineno,
                       f"{what} in src/: simulation state must derive only "
                       "from sim::Time and the seeded sim::Rng. "
                       "(steady_clock is allowed, for wall-clock reporting.)")
                break


_NEW_PACKET = re.compile(r"\bnew\s+(?:net\s*::\s*)?Packet\b")
_DELETE = re.compile(r"\bdelete\b")


def rule_raw_packet_alloc(relpath, code_lines):
    if _layer_of(relpath) is None or relpath in PACKET_POOL_FILES:
        return
    for lineno, line in enumerate(code_lines, 1):
        if _NEW_PACKET.search(line):
            yield (lineno,
                   "raw `new Packet` outside the pool (src/net/packet.cc): "
                   "use net::make_packet() so the hot path stays "
                   "allocation-free and lifecycle-deterministic.")
            continue
        for m in _DELETE.finditer(line):
            before = line[:m.start()].rstrip()
            if before.endswith("="):  # `= delete;` declarations
                continue
            rest = line[m.end():]
            if re.search(r"\b(?:pkt|packet|Packet)\b", rest):
                yield (lineno,
                       "raw `delete` of a packet: packets are pool-owned "
                       "(net::PacketPtr); deleting one corrupts the pool.")
                break


_QUOTED_INCLUDE = re.compile(r'#\s*include\s+"([^"]+)"')


def rule_include_layering(relpath, code_lines):
    layer = _layer_of(relpath)
    if layer is None or layer not in LAYER_DEPS:
        return
    allowed = LAYER_DEPS[layer]
    for lineno, line in enumerate(code_lines, 1):
        m = _QUOTED_INCLUDE.search(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target in LAYER_DEPS and target not in allowed:
            yield (lineno,
                   f"layer '{layer}' may not include '{target}/...' — the "
                   "CMake link graph has no such edge (allowed: "
                   f"{', '.join(sorted(allowed))}). Add the dependency in "
                   "CMakeLists.txt AND here only with a layering argument.")


# Markers live in comments, which the stripper blanks, so this rule reads
# the raw lines (see the needs_raw dispatch in lint_source). The struct
# body itself is scanned in the stripped text so commented-out members and
# string contents can't skew the count.
_CHECKPOINT_MARKER = re.compile(r"//\s*checkpoint:v(\d+)\s+fields=(\d+)\s*$")
_STRUCT_OPEN = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(?:struct|class)\s+(\w+)")
_ACCESS_SPEC = re.compile(r"^(?:public|private|protected)\s*:\s*")
_ATTRIBUTE = re.compile(r"^\[\[[^\]]*\]\]\s*")
_NON_MEMBER_KEYWORDS = re.compile(
    r"^(?:using|typedef|static|friend|template|struct|class|enum)\b")


def _is_member_statement(stmt):
    """True if a depth-1 struct-body statement (terminated by ';') declares
    a data member rather than a method/alias/nested type."""
    s = stmt.strip()
    while True:
        trimmed = _ACCESS_SPEC.sub("", _ATTRIBUTE.sub("", s))
        if trimmed == s:
            break
        s = trimmed
    if not s or _NON_MEMBER_KEYWORDS.match(s):
        return False
    # Blank template argument lists so `std::function<void(int)> f;` isn't
    # mistaken for a function declaration by the paren test below.
    while True:
        collapsed = re.sub(r"<[^<>]*>", "", s)
        if collapsed == s:
            break
        s = collapsed
    if "operator" in s:
        return False
    eq, par = s.find("="), s.find("(")
    return par == -1 or (eq != -1 and eq < par)


def _count_data_members(text, open_brace):
    """Counts data-member declarations in the struct body whose opening
    brace is at text[open_brace]. Nested blocks (method bodies, nested
    types, brace initializers) are skipped wholesale; a skipped block
    followed by ';' belongs to the statement (init or nested definition),
    one without ';' was a method body and voids the pending statement."""
    i, n = open_brace + 1, len(text)
    count = 0
    stmt = []
    while i < n:
        c = text[i]
        if c == "}":
            break
        if c == "{":
            inner = 1
            i += 1
            while i < n and inner > 0:
                if text[i] == "{":
                    inner += 1
                elif text[i] == "}":
                    inner -= 1
                i += 1
            j = i
            while j < n and text[j].isspace():
                j += 1
            if j >= n or text[j] != ";":
                stmt = []  # method body — not a declaration statement
            continue
        if c == ";":
            if _is_member_statement("".join(stmt)):
                count += 1
            stmt = []
        else:
            stmt.append(c)
        i += 1
    return count


def rule_checkpoint_coverage(relpath, code_lines, raw_lines):
    if _layer_of(relpath) is None:
        return
    for lineno, raw in enumerate(raw_lines, 1):
        m = _CHECKPOINT_MARKER.search(raw)
        if not m:
            continue
        version, declared = int(m.group(1)), int(m.group(2))
        j = lineno  # 0-based index of the line after the marker
        while j < len(code_lines) and not code_lines[j].strip():
            j += 1
        struct_match = _STRUCT_OPEN.match(code_lines[j]) \
            if j < len(code_lines) else None
        if struct_match is None:
            yield (lineno,
                   "dangling checkpoint marker: `// checkpoint:vN fields=M` "
                   "must immediately precede the struct/class it covers.")
            continue
        body = "\n".join(code_lines[j:])
        open_brace = body.find("{")
        if open_brace < 0:
            yield (lineno,
                   "dangling checkpoint marker: tagged declaration "
                   f"'{struct_match.group(1)}' has no body here (markers "
                   "go on the definition, not a forward declaration).")
            continue
        actual = _count_data_members(body, open_brace)
        if actual != declared:
            yield (lineno,
                   f"checkpoint-tagged struct '{struct_match.group(1)}' has "
                   f"{actual} data member(s) but the marker says "
                   f"fields={declared}: a serialized struct changed shape. "
                   f"Update the marker (fields={actual}, and bump v{version} "
                   f"-> v{version + 1} if the wire layout changed) in the "
                   "same change as the serializer/reader — see "
                   "docs/CHECKPOINT.md versioning rules.")


rule_checkpoint_coverage.needs_raw = True


RULES = {
    "rng-shard-path": rule_rng_shard_path,
    "unordered-iteration": rule_unordered_iteration,
    "pointer-order": rule_pointer_order,
    "wall-clock": rule_wall_clock,
    "raw-packet-alloc": rule_raw_packet_alloc,
    "include-layering": rule_include_layering,
    "checkpoint-coverage": rule_checkpoint_coverage,
}


def lint_source(relpath, text, allowlist=()):
    """Lints one file's contents. Returns the violations that survive the
    allowlist; marks matched entries used. Pure except for that marking."""
    code_lines = strip_comments_and_strings(text).split("\n")
    raw_lines = text.split("\n")
    # The stripper blanks string-literal contents, which would erase the
    # paths the layering rule needs — keep #include lines verbatim.
    for i, raw in enumerate(raw_lines):
        if i < len(code_lines) and raw.lstrip().startswith("#include"):
            code_lines[i] = raw
    violations = []
    for rule_name, rule_fn in RULES.items():
        if getattr(rule_fn, "needs_raw", False):
            findings = rule_fn(relpath, code_lines, raw_lines)
        else:
            findings = rule_fn(relpath, code_lines)
        for lineno, message in findings:
            line_text = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
            v = Violation(rule_name, relpath, lineno, message, line_text)
            allowed = False
            for entry in allowlist:
                if (entry.rule == rule_name and entry.path == relpath
                        and entry.pattern.search(line_text)):
                    entry.used = True
                    allowed = True
                    break
            if not allowed:
                violations.append(v)
    violations.sort(key=lambda v: (v.path, v.line))
    return violations


def lint_tree(root, relpaths, allowlist=()):
    """Lints `relpaths` (posix-relative to `root`). Returns violations."""
    violations = []
    for relpath in sorted(relpaths):
        text = (root / relpath).read_text(encoding="utf-8", errors="replace")
        violations.extend(lint_source(relpath, text, allowlist))
    return violations


def discover_sources(root):
    src = root / "src"
    return sorted(
        p.relative_to(root).as_posix()
        for ext in ("*.h", "*.cc")
        for p in src.rglob(ext))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Statically enforce the bit-identical-threads contract.")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: all of src/)")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repo root (default: the checkout containing this script)")
    parser.add_argument("--allowlist", type=pathlib.Path, default=None,
                        help="allowlist file (default: scripts/opera_lint_allowlist.txt)")
    parser.add_argument("--strict", action="store_true",
                        help="unused allowlist entries are errors, not warnings")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    root = args.root.resolve()
    allowlist_path = args.allowlist or root / "scripts" / "opera_lint_allowlist.txt"
    entries = []
    if allowlist_path.exists():
        entries, errors = parse_allowlist(allowlist_path.read_text(),
                                          str(allowlist_path))
        if errors:
            for e in errors:
                print(f"error: {e}", file=sys.stderr)
            return 2

    if args.paths:
        relpaths = []
        for p in args.paths:
            resolved = pathlib.Path(p).resolve()
            try:
                relpaths.append(resolved.relative_to(root).as_posix())
            except ValueError:
                print(f"error: {p} is outside the repo root {root}", file=sys.stderr)
                return 2
    else:
        relpaths = discover_sources(root)

    violations = lint_tree(root, relpaths, entries)
    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")

    unused = [e for e in entries if not e.used]
    for e in unused:
        print(f"{'error' if args.strict else 'warning'}: allowlist entry at "
              f"{allowlist_path.name}:{e.lineno} never matched "
              f"({e.rule} | {e.path}) — remove it or fix the pattern",
              file=sys.stderr)

    if violations:
        print(f"opera-lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    if args.strict and unused:
        return 1
    print(f"opera-lint: {len(relpaths)} file(s) clean "
          f"({len(entries)} allowlist entr{'y' if len(entries) == 1 else 'ies'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

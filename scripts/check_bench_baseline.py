#!/usr/bin/env python3
"""Fail CI when bench results regress against BENCH_BASELINE.json.

Usage:
    scripts/run_all_benches.sh build bench-results
    scripts/check_bench_baseline.py [bench-results] [BENCH_BASELINE.json] [--strict]

Checks, per bench recorded in the baseline:
  * wall-clock: fail when the new time exceeds baseline * 1.25 + 0.5 s
    (25% regression budget, plus absolute slack so millisecond benches
    don't flap on scheduler noise);
  * table shape: fail on any table-row-count drift (a missing table, a
    new table, or a different number of data rows — the cheap fingerprint
    of a figure silently changing shape);
  * presence: fail when a baseline bench produced no CSV at all.

Benches present in the results but absent from the baseline warn by
default (fail with --strict): regenerate the baseline when adding one
(scripts/record_bench_baseline.py bench-results > BENCH_BASELINE.json).
"""
import json
import os
import pathlib
import sys

# The result-format parsers live with the recorder so the two scripts can
# never disagree on the CSV/timings schema.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from record_bench_baseline import parse_csv_tables, parse_timings  # noqa: E402

# Wall-clock budget: new <= baseline * RATIO + SLACK. The defaults assume
# the run and the baseline came from the same machine; CI overrides via
# env (see .github/workflows/ci.yml) because shared-runner SKUs vary far
# more than any real regression budget. Row-count drift is exact always.
WALL_RATIO = float(os.environ.get("BENCH_WALL_RATIO", "1.25"))
WALL_SLACK_S = float(os.environ.get("BENCH_WALL_SLACK_S", "0.5"))


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    strict = "--strict" in sys.argv
    results = pathlib.Path(args[0] if len(args) > 0 else "bench-results")
    baseline_path = pathlib.Path(args[1] if len(args) > 1 else "BENCH_BASELINE.json")

    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 1
    timings_file = results / "timings.txt"
    if not timings_file.exists():
        print(f"error: {timings_file} not found; run scripts/run_all_benches.sh first",
              file=sys.stderr)
        return 1

    baseline = json.loads(baseline_path.read_text())["benches"]
    timings = parse_timings(timings_file)

    failures = []
    warnings = []
    for name, base in sorted(baseline.items()):
        # Every baseline bench must have run this time: a stale CSV left in
        # the results dir must not cover for a deleted or renamed bench.
        if name not in timings:
            failures.append(f"{name}: missing from timings.txt (bench gone or crashed)")
            continue
        # Benches with a recorded table fingerprint must produce a CSV;
        # text-output benches (bench_micro_core) are wall-clock-gated only.
        if base.get("table_rows"):
            csv = results / f"{name}.csv"
            if not csv.exists():
                failures.append(f"{name}: no CSV produced (bench crashed?)")
                continue
            rows = parse_csv_tables(csv)
            if rows != base["table_rows"]:
                failures.append(
                    f"{name}: table-row drift — baseline {base['table_rows']}, got {rows}")

        base_wall = base.get("wall_s")
        new_wall = timings.get(name, {}).get("wall_s")
        if base_wall is not None and new_wall is not None:
            budget = base_wall * WALL_RATIO + WALL_SLACK_S
            verdict = "OK"
            if new_wall > budget:
                failures.append(
                    f"{name}: wall-clock regression — {new_wall:.2f}s vs baseline "
                    f"{base_wall:.2f}s (budget {budget:.2f}s)")
                verdict = "FAIL"
            print(f"  {name:<42} {base_wall:7.2f}s -> {new_wall:7.2f}s  {verdict}")

    for name in sorted(timings):
        if name.startswith("bench_") and name not in baseline:
            warnings.append(f"{name}: not in baseline — regenerate "
                            "BENCH_BASELINE.json to start tracking it")

    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    if failures or (strict and warnings):
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"{len(failures)} bench regression(s); see above", file=sys.stderr)
        return 1
    print("bench baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

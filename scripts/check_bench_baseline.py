#!/usr/bin/env python3
"""Fail CI when bench results regress against BENCH_BASELINE.json.

Usage:
    scripts/run_all_benches.sh build bench-results
    scripts/check_bench_baseline.py [bench-results] [BENCH_BASELINE.json] [--strict]

Checks, per bench recorded in the baseline:
  * wall-clock: fail when the new time exceeds baseline * 1.25 + 0.5 s
    (25% regression budget, plus absolute slack so millisecond benches
    don't flap on scheduler noise);
  * table shape: fail on any table-row-count drift (a missing table, a
    new table, or a different number of data rows — the cheap fingerprint
    of a figure silently changing shape);
  * presence: fail when a baseline bench produced no CSV at all.

Benches present in the results but absent from the baseline warn by
default (fail with --strict): regenerate the baseline when adding one
(scripts/record_bench_baseline.py bench-results > BENCH_BASELINE.json).

The drift logic itself lives in compare_to_baseline() — a pure function
over parsed inputs, unit-tested by tests/test_check_bench_baseline.py.
"""
import json
import os
import pathlib
import sys

# The result-format parsers live with the recorder so the two scripts can
# never disagree on the CSV/timings schema.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from record_bench_baseline import (  # noqa: E402
    parse_csv_tables, parse_csv_threads, parse_timings)

# Wall-clock budget: new <= baseline * RATIO + SLACK. The defaults assume
# the run and the baseline came from the same machine; CI overrides via
# env (see .github/workflows/ci.yml) because shared-runner SKUs vary far
# more than any real regression budget. Row-count drift is exact always.
WALL_RATIO = float(os.environ.get("BENCH_WALL_RATIO", "1.25"))
WALL_SLACK_S = float(os.environ.get("BENCH_WALL_SLACK_S", "0.5"))


def compare_to_baseline(baseline, timings, csv_tables,
                        wall_ratio=WALL_RATIO, wall_slack_s=WALL_SLACK_S,
                        full_baseline=None, csv_threads=None):
    """The drift logic, as a pure function over parsed inputs.

    baseline:   {bench: {"wall_s": float|None, "table_rows": {table: rows},
                 "threads": int (optional)}}
    timings:    {bench: {"wall_s": float, "status": str}} from timings.txt
    csv_tables: {bench: {table: rows}} for every bench that produced a CSV
    full_baseline: like `baseline` but recorded from --full paper-scale
        runs (the "full_benches" section). Full runs don't happen per PR,
        so these are not wall-gated; benches recorded there are expected
        to have scale-independent table shapes, and the quick run's row
        counts are cross-checked against the full fingerprint.
    csv_threads: {bench: int} shard counts parsed from the CSVs'
        `# threads=N` metadata notes. Carried through as a report column
        and a *warning* on mismatch — wall-clock baselines are only
        comparable at equal shard counts, but old baselines and old CSVs
        (recorded before the knob existed) have no threads key and must
        not trip row-drift or fail.

    Returns (failures, warnings, report_lines). A failing bench is always
    named in its message, and wall-clock failures carry both the old and
    the new time plus the blown budget.
    """
    failures = []
    warnings = []
    report = []
    csv_threads = csv_threads or {}
    for name, base in sorted(baseline.items()):
        # Every baseline bench must have run this time: a stale CSV left in
        # the results dir must not cover for a deleted or renamed bench.
        if name not in timings:
            failures.append(f"{name}: missing from timings.txt (bench gone or crashed)")
            continue
        # Benches with a recorded table fingerprint must produce a CSV;
        # text-output benches (bench_micro_core) are wall-clock-gated only.
        if base.get("table_rows"):
            if name not in csv_tables:
                failures.append(f"{name}: no CSV produced (bench crashed?)")
                continue
            rows = csv_tables[name]
            if rows != base["table_rows"]:
                drifted = sorted(set(base["table_rows"]) | set(rows))
                detail = ", ".join(
                    f"{t}: {base['table_rows'].get(t, 'absent')} -> {rows.get(t, 'absent')}"
                    for t in drifted
                    if base["table_rows"].get(t) != rows.get(t))
                failures.append(f"{name}: table-row drift — {detail}")

        base_threads = base.get("threads", 1)
        new_threads = csv_threads.get(name, 1)
        if base_threads != new_threads:
            warnings.append(
                f"{name}: shard count changed (baseline threads={base_threads}, "
                f"run threads={new_threads}) — wall-clock budgets compare "
                "equal-thread runs; regenerate the baseline to re-anchor")

        base_wall = base.get("wall_s")
        new_wall = timings.get(name, {}).get("wall_s")
        if base_wall is not None and new_wall is not None:
            budget = base_wall * wall_ratio + wall_slack_s
            verdict = "OK"
            if base_threads != new_threads:
                # Wall budgets only compare equal-thread runs: a shard-count
                # change legitimately moves wall-clock with zero code change,
                # so the gate skips (the mismatch warning above asks for a
                # baseline re-record) instead of blaming a regression.
                verdict = "SKIP (threads changed)"
            elif new_wall > budget:
                ratio = new_wall / base_wall if base_wall > 0 else float("inf")
                failures.append(
                    f"{name}: wall-clock regression — {new_wall:.2f}s vs baseline "
                    f"{base_wall:.2f}s ({ratio:.2f}x, budget {budget:.2f}s)")
                verdict = "FAIL"
            threads_col = f" t={new_threads}" if new_threads != 1 else ""
            report.append(
                f"  {name:<42} {base_wall:7.2f}s -> {new_wall:7.2f}s  {verdict}{threads_col}")

    for name, base in sorted((full_baseline or {}).items()):
        if not base.get("table_rows") or name not in csv_tables:
            continue
        rows = csv_tables[name]
        if rows != base["table_rows"]:
            failures.append(
                f"{name}: quick-run table shape diverged from the paper-scale "
                f"(--full) baseline — full {base['table_rows']}, quick {rows}; "
                "these benches must emit scale-independent shapes")

    for name in sorted(timings):
        if name.startswith("bench_") and name not in baseline:
            warnings.append(f"{name}: not in baseline — regenerate "
                            "BENCH_BASELINE.json to start tracking it")
    return failures, warnings, report


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    strict = "--strict" in sys.argv
    results = pathlib.Path(args[0] if len(args) > 0 else "bench-results")
    baseline_path = pathlib.Path(args[1] if len(args) > 1 else "BENCH_BASELINE.json")

    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 1
    timings_file = results / "timings.txt"
    if not timings_file.exists():
        print(f"error: {timings_file} not found; run scripts/run_all_benches.sh first",
              file=sys.stderr)
        return 1

    baseline_doc = json.loads(baseline_path.read_text())
    baseline = baseline_doc["benches"]
    full_baseline = baseline_doc.get("full_benches", {})
    timings = parse_timings(timings_file)
    csv_tables = {}
    csv_threads = {}
    for name in set(baseline) | set(full_baseline):
        csv = results / f"{name}.csv"
        if csv.exists():
            csv_tables[name] = parse_csv_tables(csv)
            threads = parse_csv_threads(csv)
            if threads is not None:
                csv_threads[name] = threads

    failures, warnings, report = compare_to_baseline(
        baseline, timings, csv_tables, full_baseline=full_baseline,
        csv_threads=csv_threads)
    for line in report:
        print(line)
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    if failures or (strict and warnings):
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"{len(failures)} bench regression(s); see above", file=sys.stderr)
        return 1
    print("bench baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Run every paper-figure/table benchmark and save its stdout under
# bench-results/, one .txt per target, with wall-clock per bench recorded
# in bench-results/timings.txt. Build first:
#   cmake --preset release && cmake --build --preset release -j
# then:
#   scripts/run_all_benches.sh [build-dir] [out-dir]
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench-results}"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found (configure with the release preset first)" >&2
  exit 1
fi

mkdir -p "$out_dir"
: > "$out_dir/timings.txt"
failures=0

shopt -s nullglob
benches=("$build_dir"/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries in '$build_dir'" >&2
  exit 1
fi

for bin in "${benches[@]}"; do
  [[ -x "$bin" ]] || continue
  name="$(basename "$bin")"
  echo "== $name"
  start=$(date +%s%N)
  status=ok rc=0
  "$bin" > "$out_dir/$name.txt" 2> "$out_dir/$name.err" || rc=$?
  if (( rc != 0 )); then
    status="FAILED (exit $rc)"
    failures=$((failures + 1))
  fi
  if [[ -s "$out_dir/$name.err" ]]; then
    status="$status, stderr in $name.err"
  else
    rm -f "$out_dir/$name.err"
  fi
  end=$(date +%s%N)
  awk -v n="$name" -v ns="$((end - start))" -v st="$status" \
    'BEGIN { printf "%-40s %8.2f s  %s\n", n, ns / 1e9, st }' \
    | tee -a "$out_dir/timings.txt"
done

if (( failures > 0 )); then
  echo "done with $failures failed bench(es): outputs in $out_dir/" >&2
  exit 1
fi
echo "done: outputs in $out_dir/"

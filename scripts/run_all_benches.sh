#!/usr/bin/env bash
# Run every paper-figure/table benchmark with --csv and save its output
# under bench-results/, one .csv per target, with wall-clock per bench
# recorded in bench-results/timings.txt. Build first:
#   cmake --preset release && cmake --build --preset release -j
# then:
#   scripts/run_all_benches.sh [build-dir] [out-dir] [extra bench args...]
# e.g. `scripts/run_all_benches.sh build bench-results --full` for the
# paper-scale runs. The CSV schema is documented in docs/BENCH_OUTPUT.md.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench-results}"
if [[ "$build_dir" == -* || "$out_dir" == -* ]]; then
  echo "usage: $0 [build-dir] [out-dir] [extra bench args...]" >&2
  echo "(flags like --full go after both positional args)" >&2
  exit 1
fi
shift $(( $# > 2 ? 2 : $# )) || true
extra_args=("$@")

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found (configure with the release preset first)" >&2
  exit 1
fi

mkdir -p "$out_dir"
: > "$out_dir/timings.txt"
failures=0
dead_benches=()

# Per-bench wall-clock cap. A hung bench is killed (SIGTERM, then SIGKILL
# after 20s grace) and whatever CSV it managed to stream is preserved under
# $out_dir/partial/ so a night of sweeps is never a total loss.
timeout_s="${OPERA_BENCH_TIMEOUT_S:-1800}"

shopt -s nullglob
benches=("$build_dir"/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries in '$build_dir'" >&2
  exit 1
fi

for bin in "${benches[@]}"; do
  [[ -x "$bin" ]] || continue
  name="$(basename "$bin")"
  # bench_micro_core is a Google Benchmark binary with its own CLI/output.
  args=(--csv "${extra_args[@]+"${extra_args[@]}"}")
  ext=csv
  if [[ "$name" == bench_micro_core ]]; then
    args=()
    ext=txt
  fi
  echo "== $name"
  start=$(date +%s%N)
  status=ok rc=0
  timeout --signal=TERM --kill-after=20 "$timeout_s" \
    "$bin" "${args[@]+"${args[@]}"}" > "$out_dir/$name.$ext" 2> "$out_dir/$name.err" || rc=$?
  if (( rc != 0 )); then
    if (( rc == 124 || rc == 137 )); then
      status="TIMED OUT after ${timeout_s}s (exit $rc)"
    else
      status="FAILED (exit $rc)"
    fi
    failures=$((failures + 1))
    dead_benches+=("$name (exit $rc)")
    # Keep whatever the bench streamed before dying, out of the way of the
    # complete CSVs that baseline checks consume.
    mkdir -p "$out_dir/partial"
    mv "$out_dir/$name.$ext" "$out_dir/partial/$name.$ext"
  fi
  if [[ -s "$out_dir/$name.err" ]]; then
    status="$status, stderr in $name.err"
  else
    rm -f "$out_dir/$name.err"
  fi
  end=$(date +%s%N)
  awk -v n="$name" -v ns="$((end - start))" -v st="$status" \
    'BEGIN { printf "%-40s %8.2f s  %s\n", n, ns / 1e9, st }' \
    | tee -a "$out_dir/timings.txt"
done

if (( failures > 0 )); then
  echo "done with $failures failed bench(es); partial CSVs in $out_dir/partial/:" >&2
  for dead in "${dead_benches[@]}"; do
    echo "  FAILED: $dead" >&2
  done
  exit 1
fi
echo "done: outputs in $out_dir/"

#!/usr/bin/env python3
"""Record BENCH_BASELINE.json from a bench-results/ directory.

Usage:
    scripts/run_all_benches.sh build bench-results
    scripts/record_bench_baseline.py bench-results > BENCH_BASELINE.json

    # optionally fold in paper-scale runs recorded separately:
    scripts/run_all_benches.sh build bench-results-full --full
    scripts/record_bench_baseline.py bench-results \
        --full-results=bench-results-full > BENCH_BASELINE.json

Captures, per bench: wall-clock seconds (from timings.txt) and, per table,
the number of data rows — a cheap machine-readable fingerprint of each
figure's output shape. Full outputs stay in bench-results/*.csv; CI
uploads them as artifacts for value-level diffs.

`--full-results=DIR` records a second set of entries under "full_benches":
paper-scale (`--full`) wall-clock + table fingerprints. CI runs quick mode
only, so these entries are *not* wall-gated per PR; for benches designed
with scale-independent table shapes (bench_scale_sweep), the checker
cross-checks the quick run's row counts against the full entry. Without
`--full-results`, any existing "full_benches" section is carried over from
the prior baseline (default BENCH_BASELINE.json in the cwd; override with
`--baseline=PATH`) so quick-only regenerations never drop it.

check_bench_baseline.py imports parse_csv_tables/parse_timings from here,
so the recorder and the CI gate always agree on the result format.
"""
import json
import pathlib
import re
import sys


def parse_csv_tables(path: pathlib.Path):
    """Data-row count per table id in one bench CSV (--csv schema).

    Comment lines ('#', including the `# threads=N` metadata note) never
    count as rows, so a bench growing run metadata cannot trip row drift.
    """
    tables = {}
    for line in path.read_text().splitlines():
        if not line or line.startswith("#"):
            continue
        first = line.split(",", 1)[0]
        if first == "table":
            continue
        tables[first] = tables.get(first, 0) + 1
    return tables


def parse_csv_threads(path: pathlib.Path):
    """Shard count from a CSV's `# threads=N` metadata notes; None if absent
    (single-queue runs and CSVs from before the knob existed). A sweep
    whose runs resolved to different shard counts emits one note per
    change; the artifact is summarized by the maximum."""
    found = [int(m.group(1))
             for line in path.read_text().splitlines()
             if (m := re.match(r"#\s*threads=(\d+)", line))]
    return max(found) if found else None


def parse_timings(path: pathlib.Path):
    """{bench name: {wall_s, status}} from run_all_benches.sh timings.txt."""
    timings = {}
    for line in path.read_text().splitlines():
        m = re.match(r"(\S+)\s+([\d.]+) s\s+(.*)", line)
        if m:
            timings[m.group(1)] = {"wall_s": float(m.group(2)),
                                   "status": m.group(3).strip()}
    return timings


def collect_benches(results: pathlib.Path):
    """{bench: {wall_s, table_rows}} for every timed bench in `results`.

    Every timed bench gets a wall-clock baseline — including ones with no
    CSV (bench_micro_core emits Google-Benchmark text), which would
    otherwise be exempt from the CI wall-clock gate; table fingerprints
    only exist for CSV producers.
    """
    timings_file = results / "timings.txt"
    if not timings_file.exists():
        raise FileNotFoundError(
            f"{timings_file} not found; run scripts/run_all_benches.sh first")
    benches = {}
    for name, t in sorted(parse_timings(timings_file).items()):
        csv = results / f"{name}.csv"
        benches[name] = {
            "wall_s": t.get("wall_s"),
            "table_rows": parse_csv_tables(csv) if csv.exists() else {},
        }
        if csv.exists():
            threads = parse_csv_threads(csv)
            if threads is not None:
                benches[name]["threads"] = threads
    return benches


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    results = pathlib.Path(args[0] if args else "bench-results")
    full_results = None
    prior_path = pathlib.Path("BENCH_BASELINE.json")
    for a in sys.argv[1:]:
        if a.startswith("--full-results="):
            full_results = pathlib.Path(a.split("=", 1)[1])
        elif a.startswith("--baseline="):
            prior_path = pathlib.Path(a.split("=", 1)[1])
        elif a.startswith("--"):
            # Fail loudly on e.g. the space form `--full-results DIR`:
            # silently ignoring it would drop a minutes-long --full run and
            # carry stale full_benches entries forward instead.
            print(f"error: unknown option {a!r} (flags take the --key=value "
                  "form: --full-results=DIR, --baseline=PATH)", file=sys.stderr)
            return 2

    try:
        baseline = {"preset": "release", "benches": collect_benches(results)}
        if full_results is not None:
            baseline["full_benches"] = collect_benches(full_results)
        elif prior_path.exists():
            # A quick-only regeneration must not throw away the recorded
            # paper-scale entries — a --full run costs minutes to redo and
            # losing it would silently disable the full-vs-quick shape
            # cross-check. Carry the section over from the prior baseline
            # (point elsewhere with --baseline=PATH).
            prior_full = json.loads(prior_path.read_text()).get("full_benches")
            if prior_full:
                baseline["full_benches"] = prior_full
                print(f"note: carried over {len(prior_full)} full_benches "
                      f"entr{'y' if len(prior_full) == 1 else 'ies'} from "
                      f"{prior_path}", file=sys.stderr)
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    json.dump(baseline, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

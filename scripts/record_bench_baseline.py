#!/usr/bin/env python3
"""Record BENCH_BASELINE.json from a bench-results/ directory.

Usage:
    scripts/run_all_benches.sh build bench-results
    scripts/record_bench_baseline.py bench-results > BENCH_BASELINE.json

Captures, per bench: wall-clock seconds (from timings.txt) and, per table,
the number of data rows — a cheap machine-readable fingerprint of each
figure's output shape. Full outputs stay in bench-results/*.csv; CI
uploads them as artifacts for value-level diffs.

check_bench_baseline.py imports parse_csv_tables/parse_timings from here,
so the recorder and the CI gate always agree on the result format.
"""
import json
import pathlib
import re
import sys


def parse_csv_tables(path: pathlib.Path):
    """Data-row count per table id in one bench CSV (--csv schema)."""
    tables = {}
    for line in path.read_text().splitlines():
        if not line or line.startswith("#"):
            continue
        first = line.split(",", 1)[0]
        if first == "table":
            continue
        tables[first] = tables.get(first, 0) + 1
    return tables


def parse_timings(path: pathlib.Path):
    """{bench name: {wall_s, status}} from run_all_benches.sh timings.txt."""
    timings = {}
    for line in path.read_text().splitlines():
        m = re.match(r"(\S+)\s+([\d.]+) s\s+(.*)", line)
        if m:
            timings[m.group(1)] = {"wall_s": float(m.group(2)),
                                   "status": m.group(3).strip()}
    return timings


def main() -> int:
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench-results")
    timings_file = results / "timings.txt"
    if not timings_file.exists():
        print(f"error: {timings_file} not found; run scripts/run_all_benches.sh first",
              file=sys.stderr)
        return 1

    timings = parse_timings(timings_file)
    baseline = {"preset": "release", "benches": {}}
    # Every timed bench gets a wall-clock baseline — including ones with no
    # CSV (bench_micro_core emits Google-Benchmark text), which would
    # otherwise be exempt from the CI wall-clock gate; table fingerprints
    # only exist for CSV producers.
    for name, t in sorted(timings.items()):
        csv = results / f"{name}.csv"
        baseline["benches"][name] = {
            "wall_s": t.get("wall_s"),
            "table_rows": parse_csv_tables(csv) if csv.exists() else {},
        }
    json.dump(baseline, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Record BENCH_BASELINE.json from a bench-results/ directory.

Usage:
    scripts/run_all_benches.sh build bench-results
    scripts/record_bench_baseline.py bench-results > BENCH_BASELINE.json

Captures, per bench: wall-clock seconds (from timings.txt) and, per table,
the number of data rows — a cheap machine-readable fingerprint of each
figure's output shape. Full outputs stay in bench-results/*.csv; CI
uploads them as artifacts for value-level diffs.
"""
import json
import pathlib
import re
import sys


def parse_csv_tables(path: pathlib.Path):
    tables = {}
    current = None
    for line in path.read_text().splitlines():
        if not line or line.startswith("#"):
            continue
        first = line.split(",", 1)[0]
        if first == "table":
            continue
        current = first
        tables[current] = tables.get(current, 0) + 1
    return tables


def main() -> int:
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench-results")
    timings_file = results / "timings.txt"
    if not timings_file.exists():
        print(f"error: {timings_file} not found; run scripts/run_all_benches.sh first",
              file=sys.stderr)
        return 1

    timings = {}
    for line in timings_file.read_text().splitlines():
        m = re.match(r"(\S+)\s+([\d.]+) s\s+(.*)", line)
        if m:
            timings[m.group(1)] = {"wall_s": float(m.group(2)),
                                   "status": m.group(3).strip()}

    baseline = {"preset": "release", "benches": {}}
    for csv in sorted(results.glob("bench_*.csv")):
        name = csv.stem
        baseline["benches"][name] = {
            "wall_s": timings.get(name, {}).get("wall_s"),
            "table_rows": parse_csv_tables(csv),
        }
    json.dump(baseline, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
